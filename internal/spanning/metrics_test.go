package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
)

func pathTree(t *testing.T, n int) *Tree {
	t.Helper()
	return BFSTree(graph.Path(n), 0)
}

func starTree(t *testing.T, n int) *Tree {
	t.Helper()
	return BFSTree(graph.Star(n), 0)
}

func TestDiameterAndRadius(t *testing.T) {
	cases := []struct {
		tr       *Tree
		diameter int
		radius   int
	}{
		{pathTree(t, 5), 4, 2},
		{pathTree(t, 6), 5, 3},
		{starTree(t, 6), 2, 1},
		{pathTree(t, 1), 0, 0},
		{pathTree(t, 2), 1, 1},
	}
	for i, c := range cases {
		if d := c.tr.Diameter(); d != c.diameter {
			t.Errorf("case %d: diameter %d, want %d", i, d, c.diameter)
		}
		if r := c.tr.Radius(); r != c.radius {
			t.Errorf("case %d: radius %d, want %d", i, r, c.radius)
		}
	}
}

func TestCenterPathOddEven(t *testing.T) {
	// Path 0-1-2-3-4: unique center 2.
	c := pathTree(t, 5).Center()
	if len(c) != 1 || c[0] != 2 {
		t.Fatalf("center = %v, want [2]", c)
	}
	// Path 0..5: centers 2 and 3.
	c = pathTree(t, 6).Center()
	if len(c) != 2 || c[0] != 2 || c[1] != 3 {
		t.Fatalf("center = %v, want [2 3]", c)
	}
	// Star: the hub.
	c = starTree(t, 7).Center()
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("center = %v, want [0]", c)
	}
}

func TestCentroidPathAndStar(t *testing.T) {
	c := pathTree(t, 5).Centroid()
	if len(c) != 1 || c[0] != 2 {
		t.Fatalf("centroid = %v, want [2]", c)
	}
	c = pathTree(t, 4).Centroid()
	if len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Fatalf("centroid = %v, want [1 2]", c)
	}
	c = starTree(t, 9).Centroid()
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("centroid = %v, want [0]", c)
	}
}

func TestWienerIndexKnown(t *testing.T) {
	// Path on 4 nodes: distances 1+2+3+1+2+1 = 10.
	if w := pathTree(t, 4).WienerIndex(); w != 10 {
		t.Fatalf("Wiener(path4) = %d, want 10", w)
	}
	// Star on 5 nodes: 4 hub-leaf pairs at 1 + 6 leaf-leaf pairs at 2 = 16.
	if w := starTree(t, 5).WienerIndex(); w != 16 {
		t.Fatalf("Wiener(star5) = %d, want 16", w)
	}
}

// Property: the edge-contribution Wiener index equals the brute-force
// pairwise-distance sum.
func TestQuickWienerMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			return false
		}
		adj := tr.treeAdj()
		var brute int64
		for v := 0; v < n; v++ {
			_, dist := bfsFarthest(adj, v)
			for u := v + 1; u < n; u++ {
				brute += int64(dist[u])
			}
		}
		return tr.WienerIndex() == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: diameter <= 2*radius <= diameter+1, and the center nodes'
// eccentricity equals the radius.
func TestQuickRadiusDiameterRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			return false
		}
		d, r := tr.Diameter(), tr.Radius()
		if d > 2*r || 2*r > d+1 {
			return false
		}
		c := tr.Center()
		return len(c) >= 1 && len(c) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a centroid leaves components of size <= n/2
// (verified by brute force).
func TestQuickCentroidBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			return false
		}
		adj := tr.treeAdj()
		for _, c := range tr.Centroid() {
			// BFS from each neighbor of c with c removed.
			for _, s := range adj[c] {
				seen := map[int]bool{c: true, s: true}
				queue := []int{s}
				for len(queue) > 0 {
					v := queue[0]
					queue = queue[1:]
					for _, u := range adj[v] {
						if !seen[u] {
							seen[u] = true
							queue = append(queue, u)
						}
					}
				}
				if len(seen)-1 > n/2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPathIsStar(t *testing.T) {
	if !pathTree(t, 6).IsPath() || pathTree(t, 6).IsStar() {
		t.Fatal("path misclassified")
	}
	if starTree(t, 6).IsPath() || !starTree(t, 6).IsStar() {
		t.Fatal("star misclassified")
	}
	if !pathTree(t, 2).IsPath() || !pathTree(t, 2).IsStar() {
		t.Fatal("2-node tree is both")
	}
}

func TestAverageDepth(t *testing.T) {
	// Path 0-1-2: depths 0,1,2 => mean 1.
	if ad := pathTree(t, 3).AverageDepth(); ad != 1.0 {
		t.Fatalf("avg depth %f, want 1", ad)
	}
}

func TestCanonicalStringIsomorphism(t *testing.T) {
	// Two different labelings of the same unlabeled tree (a path).
	g1 := graph.Path(5)
	t1 := BFSTree(g1, 0)
	g2 := graph.New(5)
	g2.MustAddEdge(3, 1)
	g2.MustAddEdge(1, 4)
	g2.MustAddEdge(4, 0)
	g2.MustAddEdge(0, 2)
	t2 := BFSTree(g2, 3)
	if t1.CanonicalString() != t2.CanonicalString() {
		t.Fatal("isomorphic paths got different canonical strings")
	}
	// A star is not isomorphic to a path.
	if starTree(t, 5).CanonicalString() == t1.CanonicalString() {
		t.Fatal("star and path share a canonical string")
	}
}

// Property: canonical strings are invariant under random relabeling.
func TestQuickCanonicalRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		tr, err := RandomLabeledTree(n, rng)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		h := graph.New(n)
		for _, e := range tr.Edges() {
			h.MustAddEdge(perm[e.U], perm[e.V])
		}
		rel := BFSTree(h, perm[tr.Root()])
		return tr.CanonicalString() == rel.CanonicalString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
