package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdst/internal/graph"
)

func mustTree(t *testing.T, g *graph.Graph, parent []int, root int) *Tree {
	t.Helper()
	tr, err := NewFromParents(g, parent, root)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewFromParentsValid(t *testing.T) {
	g := graph.Path(4)
	tr := mustTree(t, g, []int{0, 0, 1, 2}, 0)
	if tr.Root() != 0 || tr.Parent(3) != 2 {
		t.Fatal("tree structure wrong")
	}
}

func TestNewFromParentsRejectsNonEdgeParent(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewFromParents(g, []int{0, 0, 0, 2}, 0); err == nil {
		t.Fatal("parent edge {2,0} not in path graph; should fail")
	}
}

func TestNewFromParentsRejectsCycle(t *testing.T) {
	g := graph.Ring(4)
	// 1<->2 parent cycle, disconnected from root 0.
	if _, err := NewFromParents(g, []int{0, 2, 1, 0}, 0); err == nil {
		t.Fatal("parent cycle accepted")
	}
}

func TestNewFromParentsRejectsBadRoot(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewFromParents(g, []int{1, 1, 1}, 0); err == nil {
		t.Fatal("parent[root] != root accepted")
	}
	if _, err := NewFromParents(g, []int{0, 0}, 0); err == nil {
		t.Fatal("short parent array accepted")
	}
	if _, err := NewFromParents(g, []int{0, 0, 1}, 5); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestDegreesAndMax(t *testing.T) {
	g := graph.Star(5)
	tr := mustTree(t, g, []int{0, 0, 0, 0, 0}, 0)
	deg := tr.Degrees()
	if deg[0] != 4 {
		t.Fatalf("hub degree %d, want 4", deg[0])
	}
	for v := 1; v < 5; v++ {
		if deg[v] != 1 {
			t.Fatalf("leaf degree %d", deg[v])
		}
	}
	if tr.MaxDegree() != 4 {
		t.Fatal("MaxDegree wrong")
	}
	if tr.Degree(0) != 4 || tr.Degree(2) != 1 {
		t.Fatal("single-node Degree wrong")
	}
}

func TestHasTreeEdgeAndEdges(t *testing.T) {
	g := graph.Ring(4)
	tr := mustTree(t, g, []int{0, 0, 1, 0}, 0)
	if !tr.HasTreeEdge(0, 1) || !tr.HasTreeEdge(2, 1) || !tr.HasTreeEdge(3, 0) {
		t.Fatal("missing tree edges")
	}
	if tr.HasTreeEdge(2, 3) {
		t.Fatal("{2,3} should be non-tree")
	}
	if len(tr.Edges()) != 3 {
		t.Fatal("edge count")
	}
	nte := tr.NonTreeEdges()
	if len(nte) != 1 || nte[0] != (graph.Edge{U: 2, V: 3}) {
		t.Fatalf("non-tree edges %v", nte)
	}
}

func TestChildrenSubtreeDepth(t *testing.T) {
	g := graph.Path(5)
	tr := mustTree(t, g, []int{0, 0, 1, 2, 3}, 0)
	if got := tr.Children(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("children(1)=%v", got)
	}
	sub := tr.Subtree(2)
	if len(sub) != 3 || sub[0] != 2 || sub[2] != 4 {
		t.Fatalf("subtree(2)=%v", sub)
	}
	if !tr.InSubtree(2, 4) || tr.InSubtree(2, 1) {
		t.Fatal("InSubtree wrong")
	}
	if tr.Depth(4) != 4 || tr.Height() != 4 {
		t.Fatal("depth/height wrong")
	}
}

func TestPathBetween(t *testing.T) {
	// Tree: 0 root, children 1 and 2; 3 under 1; 4 under 2.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 4) // extra non-tree edge
	tr := mustTree(t, g, []int{0, 0, 0, 1, 2}, 0)

	p := tr.PathBetween(3, 4)
	want := []int{3, 1, 0, 2, 4}
	if len(p) != len(want) {
		t.Fatalf("path %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
	// Path where one endpoint is an ancestor of the other.
	p = tr.PathBetween(0, 3)
	if len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Fatalf("ancestor path %v", p)
	}
	// Self path.
	if p := tr.PathBetween(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path %v", p)
	}
}

func TestFundamentalCycle(t *testing.T) {
	g := graph.Ring(5)
	tr := mustTree(t, g, []int{0, 0, 1, 2, 3}, 0)
	cyc := tr.FundamentalCycle(graph.Edge{U: 0, V: 4})
	if len(cyc) != 5 || cyc[0] != 0 || cyc[4] != 4 {
		t.Fatalf("cycle %v", cyc)
	}
}

func TestFundamentalCyclePanics(t *testing.T) {
	g := graph.Ring(4)
	tr := mustTree(t, g, []int{0, 0, 1, 0}, 0)
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FundamentalCycle(%v) should panic", e)
				}
			}()
			tr.FundamentalCycle(e)
		}()
	}
}

func TestSwapBasic(t *testing.T) {
	g := graph.Ring(5)
	tr := mustTree(t, g, []int{0, 0, 1, 2, 3}, 0)
	// Cycle of {0,4} is the whole ring; remove {1,2}.
	if err := tr.Swap(graph.Edge{U: 0, V: 4}, graph.Edge{U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.HasTreeEdge(0, 4) || tr.HasTreeEdge(1, 2) {
		t.Fatal("swap did not exchange edges")
	}
	if tr.Root() != 0 || tr.Parent(0) != 0 {
		t.Fatal("root moved")
	}
}

func TestSwapErrors(t *testing.T) {
	g := graph.Ring(5)
	tr := mustTree(t, g, []int{0, 0, 1, 2, 3}, 0)
	// add must be non-tree.
	if err := tr.Swap(graph.Edge{U: 0, V: 1}, graph.Edge{U: 1, V: 2}); err == nil {
		t.Fatal("tree edge accepted as add")
	}
	// rm must be a tree edge.
	if err := tr.Swap(graph.Edge{U: 0, V: 4}, graph.Edge{U: 0, V: 4}); err == nil {
		t.Fatal("non-tree edge accepted as rm")
	}
}

func TestSwapOffCycleRejected(t *testing.T) {
	// Graph: triangle 0-1-2 plus pendant 3 on 0.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	tr := mustTree(t, g, []int{0, 0, 1, 0}, 0)
	// Cycle of {0,2} is 0-1-2; edge {0,3} is not on it.
	if err := tr.Swap(graph.Edge{U: 0, V: 2}, graph.Edge{U: 0, V: 3}); err == nil {
		t.Fatal("off-cycle rm accepted; would disconnect tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree corrupted by rejected swap: %v", err)
	}
}

func TestSwapBothOrientations(t *testing.T) {
	// Exercise the Fig. 5 (a)/(b) cases: removed edge child on either side
	// of the attachment endpoint.
	g := graph.Ring(6)
	// Tree rooted at 0: chain 0-1-2-3-4-5, non-tree edge {0,5}.
	tr := mustTree(t, g, []int{0, 0, 1, 2, 3, 4}, 0)
	// Remove {3,4}: child side contains 4,5 -> attach at 5 (Fig 5b Back).
	c := tr.Clone()
	if err := c.Swap(graph.Edge{U: 0, V: 5}, graph.Edge{U: 3, V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Parent(5) != 0 || c.Parent(4) != 5 {
		t.Fatalf("reversal wrong: parent(5)=%d parent(4)=%d", c.Parent(5), c.Parent(4))
	}
	// Remove {0,1}: child side contains 1..5 including both endpoints of
	// add... child of {0,1} is 1; subtree(1) contains 5. attach=5.
	c2 := tr.Clone()
	if err := c2.Swap(graph.Edge{U: 0, V: 5}, graph.Edge{U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c2.HasTreeEdge(0, 5) || c2.HasTreeEdge(0, 1) {
		t.Fatal("swap edges wrong")
	}
}

func TestBFSTree(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := BFSTree(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(8) != 4 {
		t.Fatalf("BFS depth of corner %d, want 4", tr.Depth(8))
	}
}

func TestDFSTree(t *testing.T) {
	g := graph.Complete(6)
	tr := DFSTree(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges()) != 5 {
		t.Fatal("edge count")
	}
}

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomGnp(25, 0.2, rng)
	for i := 0; i < 10; i++ {
		tr := RandomTree(g, 0, rng)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomTreeUniformish(t *testing.T) {
	// On C4 there are exactly 4 spanning trees; Wilson should hit all.
	rng := rand.New(rand.NewSource(11))
	g := graph.Ring(4)
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		tr := RandomTree(g, 0, rng)
		key := ""
		for _, e := range tr.Edges() {
			key += e.String()
		}
		seen[key] = true
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct trees of C4, want 4", len(seen))
	}
}

func TestWorstDegreeTree(t *testing.T) {
	g := graph.Wheel(8)
	tr := WorstDegreeTree(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hub should absorb all nodes: degree 7.
	if tr.Degree(0) != 7 {
		t.Fatalf("hub tree degree %d, want 7", tr.Degree(0))
	}
}

func TestCompareDegreeSequences(t *testing.T) {
	if CompareDegreeSequences([]int{5, 2}, []int{4, 3}) != 1 {
		t.Fatal("compare")
	}
	if CompareDegreeSequences([]int{4, 3}, []int{5, 2}) != -1 {
		t.Fatal("compare")
	}
	if CompareDegreeSequences([]int{3, 3}, []int{3, 3}) != 0 {
		t.Fatal("compare")
	}
	if CompareDegreeSequences([]int{3}, []int{3, 1}) != -1 {
		t.Fatal("prefix compare")
	}
}

func TestDegreeSequenceSorted(t *testing.T) {
	g := graph.Star(5)
	tr := mustTree(t, g, []int{0, 0, 0, 0, 0}, 0)
	seq := tr.DegreeSequence()
	if seq[0] != 4 || seq[4] != 1 {
		t.Fatalf("sequence %v", seq)
	}
}

// Property: swap preserves the spanning-tree invariants and exchanges
// exactly the intended pair of edges.
func TestQuickSwapPreservesTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := graph.RandomGnp(n, 0.3, rng)
		tr := RandomTree(g, rng.Intn(n), rng)
		nte := tr.NonTreeEdges()
		if len(nte) == 0 {
			return true
		}
		add := nte[rng.Intn(len(nte))]
		cyc := tr.FundamentalCycle(add)
		i := rng.Intn(len(cyc) - 1)
		rm := graph.Edge{U: cyc[i], V: cyc[i+1]}
		before := tr.EdgeSet()
		if err := tr.Swap(add, rm); err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		after := tr.EdgeSet()
		if !after[add.Normalize()] || after[rm.Normalize()] {
			return false
		}
		// All other edges unchanged.
		diff := 0
		for e := range before {
			if !after[e] {
				diff++
			}
		}
		return diff == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS/DFS/random trees are always valid spanning trees with
// n-1 edges, and PathBetween endpoints match.
func TestQuickTreeConstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := graph.RandomGnp(n, 0.25, rng)
		root := rng.Intn(n)
		for _, tr := range []*Tree{BFSTree(g, root), DFSTree(g, root), RandomTree(g, root, rng)} {
			if tr.Validate() != nil || len(tr.Edges()) != n-1 {
				return false
			}
			u, v := rng.Intn(n), rng.Intn(n)
			p := tr.PathBetween(u, v)
			if p[0] != u || p[len(p)-1] != v {
				return false
			}
			// Consecutive path nodes are tree edges.
			for i := 0; i+1 < len(p); i++ {
				if !tr.HasTreeEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of tree degrees is 2(n-1).
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.RandomGnp(n, 0.3, rng)
		tr := RandomTree(g, 0, rng)
		sum := 0
		for _, d := range tr.Degrees() {
			sum += d
		}
		return sum == 2*(n-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
