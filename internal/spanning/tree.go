// Package spanning provides rooted spanning trees over an undirected
// graph: construction (BFS, DFS, uniform-random via Wilson's algorithm),
// validation, degree accounting, tree paths and fundamental cycles, and
// the edge-swap primitive on which every minimum-degree improvement in
// this repository is built.
//
// A Tree stores only parent pointers — the same representation the
// distributed protocol maintains — so every structural query used by the
// sequential baselines matches the information available to the nodes.
package spanning

import (
	"fmt"
	"math/rand"
	"sort"

	"mdst/internal/graph"
)

// Tree is a rooted spanning tree of a graph. parent[root] == root.
type Tree struct {
	g      *graph.Graph
	parent []int
	root   int
}

// NewFromParents builds a tree from a parent array and validates it: every
// parent edge must exist in g, parent pointers must form a single tree
// spanning all nodes, and parent[root] == root.
func NewFromParents(g *graph.Graph, parent []int, root int) (*Tree, error) {
	n := g.N()
	if len(parent) != n {
		return nil, fmt.Errorf("spanning: parent array length %d, want %d", len(parent), n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("spanning: root %d out of range", root)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("spanning: parent[root=%d] = %d, want self", root, parent[root])
	}
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		p := parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("spanning: parent[%d] = %d out of range", v, p)
		}
		if !g.HasEdge(v, p) {
			return nil, fmt.Errorf("spanning: parent edge {%d,%d} not in graph", v, p)
		}
	}
	t := &Tree{g: g, parent: append([]int(nil), parent...), root: root}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks the spanning-tree invariants: all nodes reach the root
// through parent pointers without cycles.
func (t *Tree) Validate() error {
	n := t.g.N()
	// state: 0 unvisited, 1 on current path, 2 confirmed reaching root.
	state := make([]uint8, n)
	state[t.root] = 2
	for v := 0; v < n; v++ {
		if state[v] != 0 {
			continue
		}
		var path []int
		u := v
		for state[u] == 0 {
			state[u] = 1
			path = append(path, u)
			u = t.parent[u]
		}
		if state[u] == 1 {
			return fmt.Errorf("spanning: parent cycle through node %d", u)
		}
		for _, w := range path {
			state[w] = 2
		}
	}
	return nil
}

// Graph returns the underlying graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Root returns the root node.
func (t *Tree) Root() int { return t.root }

// Parent returns v's parent (the root's parent is itself).
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Parents returns a copy of the parent array.
func (t *Tree) Parents() []int { return append([]int(nil), t.parent...) }

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	return &Tree{g: t.g, parent: append([]int(nil), t.parent...), root: t.root}
}

// Assign copies o's structure into t. Both trees must span the same graph.
func (t *Tree) Assign(o *Tree) {
	if t.g != o.g {
		panic("spanning: Assign across different graphs")
	}
	copy(t.parent, o.parent)
	t.root = o.root
}

// HasTreeEdge reports whether {u,v} is a tree edge.
func (t *Tree) HasTreeEdge(u, v int) bool {
	return t.parent[u] == v && u != t.root || t.parent[v] == u && v != t.root
}

// Edges returns the n-1 tree edges in canonical sorted order.
func (t *Tree) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, t.g.N()-1)
	for v := 0; v < t.g.N(); v++ {
		if v != t.root {
			out = append(out, graph.Edge{U: v, V: t.parent[v]}.Normalize())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// EdgeSet returns the tree edges as a set keyed by canonical edge.
func (t *Tree) EdgeSet() map[graph.Edge]bool {
	s := make(map[graph.Edge]bool, t.g.N()-1)
	for v := 0; v < t.g.N(); v++ {
		if v != t.root {
			s[graph.Edge{U: v, V: t.parent[v]}.Normalize()] = true
		}
	}
	return s
}

// NonTreeEdges returns the graph edges not in the tree, canonical order.
func (t *Tree) NonTreeEdges() []graph.Edge {
	set := t.EdgeSet()
	var out []graph.Edge
	for _, e := range t.g.Edges() {
		if !set[e] {
			out = append(out, e)
		}
	}
	return out
}

// Degree returns the degree of v in the tree.
func (t *Tree) Degree(v int) int {
	d := 0
	if v != t.root {
		d++
	}
	for _, u := range t.g.Neighbors(v) {
		if u != t.root && t.parent[u] == v {
			d++
		}
	}
	return d
}

// Degrees returns the tree degree of every node.
func (t *Tree) Degrees() []int {
	deg := make([]int, t.g.N())
	for v := 0; v < t.g.N(); v++ {
		if v != t.root {
			deg[v]++
			deg[t.parent[v]]++
		}
	}
	return deg
}

// MaxDegree returns deg(T) = max_v deg_T(v).
func (t *Tree) MaxDegree() int {
	max := 0
	for _, d := range t.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// DegreeSequence returns the tree degrees sorted in decreasing order —
// the potential function used to prove improvement termination.
func (t *Tree) DegreeSequence() []int {
	deg := t.Degrees()
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	return deg
}

// CompareDegreeSequences compares two decreasing degree sequences
// lexicographically: -1 if a < b, 0 if equal, +1 if a > b.
func CompareDegreeSequences(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Children returns the children of v in increasing order.
func (t *Tree) Children(v int) []int {
	var out []int
	for _, u := range t.g.Neighbors(v) {
		if u != t.root && t.parent[u] == v {
			out = append(out, u)
		}
	}
	return out
}

// Depth returns the number of tree edges from v to the root.
func (t *Tree) Depth(v int) int {
	d := 0
	for v != t.root {
		v = t.parent[v]
		d++
	}
	return d
}

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int {
	h := 0
	for v := 0; v < t.g.N(); v++ {
		if d := t.Depth(v); d > h {
			h = d
		}
	}
	return h
}

// Subtree returns all nodes in the subtree rooted at v (including v).
func (t *Tree) Subtree(v int) []int {
	var out []int
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		stack = append(stack, t.Children(u)...)
	}
	sort.Ints(out)
	return out
}

// InSubtree reports whether x lies in the subtree rooted at v.
func (t *Tree) InSubtree(v, x int) bool {
	for {
		if x == v {
			return true
		}
		if x == t.root {
			return false
		}
		x = t.parent[x]
	}
}

// PathBetween returns the unique tree path from u to v, inclusive.
func (t *Tree) PathBetween(u, v int) []int {
	// Climb both to the root recording paths, then splice at the LCA.
	up := func(x int) []int {
		p := []int{x}
		for x != t.root {
			x = t.parent[x]
			p = append(p, x)
		}
		return p
	}
	pu, pv := up(u), up(v)
	// Trim the common suffix, keeping the LCA once.
	i, j := len(pu)-1, len(pv)-1
	for i > 0 && j > 0 && pu[i-1] == pv[j-1] {
		i--
		j--
	}
	path := append([]int(nil), pu[:i+1]...)
	for k := j - 1; k >= 0; k-- {
		path = append(path, pv[k])
	}
	return path
}

// FundamentalCycle returns the cycle created by adding non-tree edge e:
// the tree path from e.U to e.V (the edge e itself closes the cycle).
// It panics if e is a tree edge or not a graph edge.
func (t *Tree) FundamentalCycle(e graph.Edge) []int {
	if !t.g.HasEdge(e.U, e.V) {
		panic(fmt.Sprintf("spanning: %v not a graph edge", e))
	}
	if t.HasTreeEdge(e.U, e.V) {
		panic(fmt.Sprintf("spanning: %v is a tree edge", e))
	}
	return t.PathBetween(e.U, e.V)
}

// Swap replaces tree edge rm with non-tree edge add. rm must lie on the
// fundamental cycle of add; otherwise the parent reorientation would
// disconnect the tree, and Swap returns an error without modifying t.
//
// The reorientation mirrors the distributed Reverse procedure: the
// endpoint of add inside the detached component re-hangs on the other
// endpoint and the parent chain between it and rm is reversed.
func (t *Tree) Swap(add, rm graph.Edge) error {
	if !t.g.HasEdge(add.U, add.V) || t.HasTreeEdge(add.U, add.V) {
		return fmt.Errorf("spanning: add %v must be a non-tree graph edge", add)
	}
	if !t.HasTreeEdge(rm.U, rm.V) {
		return fmt.Errorf("spanning: rm %v must be a tree edge", rm)
	}
	cycle := t.FundamentalCycle(add)
	onCycle := false
	for i := 0; i+1 < len(cycle); i++ {
		a, b := cycle[i], cycle[i+1]
		if (a == rm.U && b == rm.V) || (a == rm.V && b == rm.U) {
			onCycle = true
			break
		}
	}
	if !onCycle {
		return fmt.Errorf("spanning: rm %v not on fundamental cycle of %v", rm, add)
	}
	// The child endpoint of rm roots the detached component.
	child := rm.U
	if t.parent[rm.V] == rm.U {
		child = rm.V
	}
	// The endpoint of add inside the detached component re-attaches.
	attach, outside := add.U, add.V
	if !t.InSubtree(child, attach) {
		attach, outside = add.V, add.U
	}
	// Reverse the parent chain from attach up to child, then hang attach
	// on outside. Chain: attach -> ... -> child (ancestors within the
	// detached subtree).
	prev := outside
	v := attach
	for {
		next := t.parent[v]
		t.parent[v] = prev
		if v == child {
			break
		}
		prev = v
		v = next
	}
	return nil
}

// BFSTree returns the breadth-first spanning tree rooted at root.
func BFSTree(g *graph.Graph, root int) *Tree {
	if !g.IsConnected() {
		panic("spanning: BFSTree requires a connected graph")
	}
	parent, _ := g.BFSFrom(root)
	return &Tree{g: g, parent: parent, root: root}
}

// DFSTree returns a depth-first spanning tree rooted at root.
func DFSTree(g *graph.Graph, root int) *Tree {
	if !g.IsConnected() {
		panic("spanning: DFSTree requires a connected graph")
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	return &Tree{g: g, parent: parent, root: root}
}

// RandomTree returns a uniformly random spanning tree via Wilson's
// loop-erased random walk algorithm, rooted at root.
func RandomTree(g *graph.Graph, root int, rng *rand.Rand) *Tree {
	if !g.IsConnected() {
		panic("spanning: RandomTree requires a connected graph")
	}
	n := g.N()
	parent := make([]int, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	inTree[root] = true
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		// Random walk from start until hitting the tree, recording the
		// successor of each visited node (loop erasure by overwrite).
		next := make(map[int]int)
		u := start
		for !inTree[u] {
			nbrs := g.Neighbors(u)
			v := nbrs[rng.Intn(len(nbrs))]
			next[u] = v
			u = v
		}
		// Commit the loop-erased path.
		u = start
		for !inTree[u] {
			parent[u] = next[u]
			inTree[u] = true
			u = next[u]
		}
	}
	return &Tree{g: g, parent: parent, root: root}
}

// WorstDegreeTree returns a spanning tree built greedily to concentrate
// degree on high-degree graph nodes (a deliberately bad starting point
// for degree-reduction experiments): a BFS that always expands the
// highest-degree frontier node first.
func WorstDegreeTree(g *graph.Graph, root int) *Tree {
	if !g.IsConnected() {
		panic("spanning: WorstDegreeTree requires a connected graph")
	}
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	frontier := []int{root}
	for len(frontier) > 0 {
		// Pick the frontier node with maximum graph degree (ties: min ID).
		best := 0
		for i, u := range frontier {
			if g.Degree(u) > g.Degree(frontier[best]) ||
				(g.Degree(u) == g.Degree(frontier[best]) && u < frontier[best]) {
				best = i
			}
		}
		u := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				frontier = append(frontier, v)
			}
		}
	}
	return &Tree{g: g, parent: parent, root: root}
}
