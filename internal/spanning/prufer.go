package spanning

import (
	"fmt"
	"math/rand"

	"mdst/internal/graph"
)

// Prüfer codes: the classical bijection between labeled trees on n nodes
// and sequences in {0..n-1}^(n-2). They give the experiment suite a way
// to enumerate or sample *all* labeled trees uniformly (not just the
// spanning trees of a particular graph), used by the tree-metric
// property tests and by workload generators that need a random tree
// topology with exact uniformity guarantees.

// PruferEncode returns the Prüfer sequence of the tree (length n-2).
// The tree's underlying graph edges are ignored: only the parent
// structure matters. Trees with fewer than 2 nodes have no code; n = 2
// yields the empty sequence.
func PruferEncode(t *Tree) []int {
	n := t.g.N()
	if n < 2 {
		return nil
	}
	deg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range t.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		deg[e.U]++
		deg[e.V]++
	}
	removed := make([]bool, n)
	seq := make([]int, 0, n-2)
	// leaf = the smallest-labeled current leaf; classic O(n log n) with a
	// moving pointer suffices because labels only ever become leaves once.
	ptr := 0
	for ptr < n && deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for k := 0; k < n-2; k++ {
		// Remove `leaf`; its unique remaining neighbor joins the sequence.
		var nb int = -1
		for _, u := range adj[leaf] {
			if !removed[u] {
				nb = u
				break
			}
		}
		seq = append(seq, nb)
		removed[leaf] = true
		deg[nb]--
		if deg[nb] == 1 && nb < ptr {
			leaf = nb
		} else {
			for ptr < n && (removed[ptr] || deg[ptr] != 1) {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq
}

// PruferDecode builds the labeled tree on n nodes encoded by seq
// (length n-2), rooted at the smallest-labeled leaf's neighbor chain
// end... the root is chosen as node n-1, the node that is never removed.
// The returned tree lives on its own complete-graph-free topology: the
// underlying graph contains exactly the tree edges.
func PruferDecode(seq []int) (*Tree, error) {
	n := len(seq) + 2
	deg := make([]int, n)
	for _, v := range seq {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("spanning: prüfer symbol %d out of range [0,%d)", v, n)
		}
		deg[v]++
	}
	for v := range deg {
		deg[v]++ // every node appears deg-1 times in the sequence
	}
	g := graph.New(n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	ptr := 0
	for ptr < n && deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		g.MustAddEdge(leaf, v)
		parent[leaf] = v
		deg[leaf]--
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			for ptr < n && deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Two nodes of degree 1 remain; connect them. One is always n-1.
	last := -1
	for v := 0; v < n; v++ {
		if deg[v] == 1 && v != n-1 {
			last = v
			break
		}
	}
	if last == -1 {
		last = n - 2
	}
	g.MustAddEdge(last, n-1)
	parent[last] = n - 1
	parent[n-1] = n - 1
	return NewFromParents(g, parent, n-1)
}

// RandomLabeledTree samples a uniformly random labeled tree on n nodes
// via a random Prüfer sequence (exactly uniform over the n^(n-2) trees,
// by Cayley's formula).
func RandomLabeledTree(n int, rng *rand.Rand) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("spanning: RandomLabeledTree needs n >= 1")
	}
	if n == 1 {
		g := graph.New(1)
		return NewFromParents(g, []int{0}, 0)
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	return PruferDecode(seq)
}
