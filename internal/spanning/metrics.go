package spanning

import "sort"

// Tree metrics used by the experiment analysis: eccentricity-based
// (diameter, radius, center), balance-based (centroid) and aggregate
// (Wiener index, average depth), plus an AHU canonical form for
// isomorphism checks between stabilized trees.

// treeAdj builds the undirected adjacency of the tree edges.
func (t *Tree) treeAdj() [][]int {
	n := t.g.N()
	adj := make([][]int, n)
	for _, e := range t.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// bfsFarthest returns the node farthest from start (smallest label on
// ties) and the distance slice.
func bfsFarthest(adj [][]int, start int) (far int, dist []int) {
	n := len(adj)
	dist = make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	far = start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] > dist[far] {
			far = v
		}
		for _, u := range adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return far, dist
}

// Diameter returns the number of edges on a longest path in the tree
// (the classic double-BFS).
func (t *Tree) Diameter() int {
	if t.g.N() == 0 {
		return 0
	}
	adj := t.treeAdj()
	a, _ := bfsFarthest(adj, 0)
	b, dist := bfsFarthest(adj, a)
	return dist[b]
}

// Radius returns ceil(diameter/2): the eccentricity of a center node.
func (t *Tree) Radius() int { return (t.Diameter() + 1) / 2 }

// Center returns the nodes of minimum eccentricity (one or two, the
// middle of any longest path), sorted ascending. In a tree the
// eccentricity of every node is realized at one endpoint of a diameter,
// so two extra BFS passes from the diameter endpoints suffice.
func (t *Tree) Center() []int {
	n := t.g.N()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	adj := t.treeAdj()
	a, _ := bfsFarthest(adj, 0)
	b, distA := bfsFarthest(adj, a)
	_, distB := bfsFarthest(adj, b)
	best := n
	var centers []int
	for v := 0; v < n; v++ {
		ecc := max2(distA[v], distB[v])
		switch {
		case ecc < best:
			best = ecc
			centers = centers[:0]
			centers = append(centers, v)
		case ecc == best:
			centers = append(centers, v)
		}
	}
	sort.Ints(centers)
	return centers
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Centroid returns the one or two nodes whose removal leaves components
// of at most n/2 nodes, sorted ascending.
func (t *Tree) Centroid() []int {
	n := t.g.N()
	if n == 0 {
		return nil
	}
	adj := t.treeAdj()
	size := make([]int, n)
	par := make([]int, n)
	// Iterative post-order rooted at node 0 over the tree adjacency.
	type frame struct{ v, parent, ni int }
	stack := []frame{{v: 0, parent: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ni == 0 {
			size[f.v] = 1
			par[f.v] = f.parent
		}
		if f.ni < len(adj[f.v]) {
			u := adj[f.v][f.ni]
			f.ni++
			if u != f.parent {
				stack = append(stack, frame{v: u, parent: f.v})
			}
			continue
		}
		if f.parent >= 0 {
			size[f.parent] += size[f.v]
		}
		stack = stack[:len(stack)-1]
	}
	var centroids []int
	for v := 0; v < n; v++ {
		worst := 0
		if v != 0 {
			worst = n - size[v] // the component on the parent side
		}
		for _, u := range adj[v] {
			if u == par[v] {
				continue
			}
			if size[u] > worst {
				worst = size[u]
			}
		}
		if worst <= n/2 {
			centroids = append(centroids, v)
		}
	}
	sort.Ints(centroids)
	return centroids
}

// WienerIndex returns the sum of pairwise distances between all node
// pairs (each unordered pair once) — O(n) via edge-contribution
// counting: an edge splitting the tree into sides of a and n-a nodes
// contributes a*(n-a).
func (t *Tree) WienerIndex() int64 {
	n := t.g.N()
	if n < 2 {
		return 0
	}
	// Subtree sizes in the rooted view.
	size := make([]int, n)
	order := make([]int, 0, n)
	queue := []int{t.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		queue = append(queue, t.Children(v)...)
	}
	var total int64
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		for _, c := range t.Children(v) {
			size[v] += size[c]
		}
		if v != t.root {
			total += int64(size[v]) * int64(n-size[v])
		}
	}
	return total
}

// AverageDepth returns the mean distance to the root.
func (t *Tree) AverageDepth() float64 {
	n := t.g.N()
	if n == 0 {
		return 0
	}
	sum := 0
	for v := 0; v < n; v++ {
		sum += t.Depth(v)
	}
	return float64(sum) / float64(n)
}

// IsPath reports whether the tree is a simple path (max degree <= 2):
// the global optimum shape whenever the graph is Hamiltonian-traceable.
func (t *Tree) IsPath() bool { return t.g.N() <= 2 || t.MaxDegree() <= 2 }

// IsStar reports whether some node is adjacent to all others.
func (t *Tree) IsStar() bool {
	n := t.g.N()
	if n <= 2 {
		return true
	}
	return t.MaxDegree() == n-1
}

// CanonicalString returns the AHU canonical form of the tree as an
// unlabeled rooted-at-centroid tree: two trees are isomorphic (as
// unlabeled trees) iff their canonical strings are equal. With two
// centroids the lexicographically smaller rooting is used.
func (t *Tree) CanonicalString() string {
	n := t.g.N()
	if n == 0 {
		return ""
	}
	adj := t.treeAdj()
	cents := t.Centroid()
	best := ""
	for _, c := range cents {
		s := ahu(adj, c, -1)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

// ahu computes the canonical encoding of the subtree at v (entering from
// parent p): "(" + sorted child encodings + ")".
func ahu(adj [][]int, v, p int) string {
	var kids []string
	for _, u := range adj[v] {
		if u != p {
			kids = append(kids, ahu(adj, u, v))
		}
	}
	sort.Strings(kids)
	out := "("
	for _, k := range kids {
		out += k
	}
	return out + ")"
}
