package mdst

// One benchmark per experiment of EXPERIMENTS.md (E1–E11), plus
// micro-benchmarks of the hot substrates and the scenario-matrix
// engine. Each experiment bench runs one complete workload cell per
// iteration; `go test -bench=. -benchmem` regenerates every number the
// experiment tables are built from (at a reduced sweep — cmd/mdstbench
// and cmd/mdstmatrix run the full sweeps). The sweep-shaped experiments
// execute through internal/scenario, so these benchmarks exercise the
// engine's worker sharding as well.

import (
	"fmt"
	"math/rand"
	"testing"

	"mdst/internal/benchtab"
	"mdst/internal/core"
	"mdst/internal/graph"
	"mdst/internal/harness"
	"mdst/internal/mdstseq"
	"mdst/internal/scenario"
	"mdst/internal/sim"
	"mdst/internal/spanning"
)

func benchSweep() benchtab.SweepSpec {
	return benchtab.SweepSpec{Sizes: []int{16, 24}, Seeds: 1, Sched: harness.SchedSync}
}

func benchFamilies() []graph.Family {
	return []graph.Family{
		graph.MustFamily("ring+chords"),
		graph.MustFamily("gnp"),
		graph.MustFamily("ham-augmented"),
	}
}

// BenchmarkE1DegreeQuality regenerates the Theorem 2 table.
func BenchmarkE1DegreeQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchtab.E1DegreeQuality(benchSweep(), benchFamilies())
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				b.Fatalf("Theorem 2 violated: %v", row)
			}
		}
	}
}

// BenchmarkE2Convergence regenerates the Lemma 5 rounds table.
func BenchmarkE2Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E2Convergence(benchSweep(), benchFamilies())
	}
}

// BenchmarkE3Memory regenerates the O(δ log n) memory table.
func BenchmarkE3Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E3Memory(benchSweep(), benchFamilies())
	}
}

// BenchmarkE4MessageLength regenerates the O(n log n) buffer table.
func BenchmarkE4MessageLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E4MessageLength(benchSweep(), benchFamilies())
	}
}

// BenchmarkE5FaultRecovery regenerates the Definition 1 recovery series.
func BenchmarkE5FaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E5FaultRecovery(20, 1, harness.SchedSync)
	}
}

// BenchmarkE6Baselines regenerates the baseline comparison table.
func BenchmarkE6Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E6Baselines(benchSweep(), benchFamilies())
	}
}

// BenchmarkE7Ablations regenerates the policy ablation table.
func BenchmarkE7Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E7Ablations(16, 1)
	}
}

// BenchmarkE8TargetedFaults regenerates the targeted-fault extension
// table.
func BenchmarkE8TargetedFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E8TargetedFaults("gnp", 16, 1, harness.SchedSync)
	}
}

// BenchmarkE9LossyLinks regenerates the lossy-link extension table.
func BenchmarkE9LossyLinks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E9LossyLinks("gnp", 14, 1)
	}
}

// BenchmarkE10Churn regenerates the topology-churn extension table.
func BenchmarkE10Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchtab.E10Churn("gnp", 14, 1, harness.SchedSync)
	}
}

// BenchmarkE11Choreography regenerates the exchange-choreography
// ablation table (core S3 chain vs the paper's literal Remove/Back).
func BenchmarkE11Choreography(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchtab.E11Choreography([]int{14}, 1, harness.SchedSync)
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				b.Fatalf("variant did not reach legitimacy: %v", row)
			}
		}
	}
}

func BenchmarkE12SearchTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := benchtab.E12SearchTraffic("ring+chords", []int{16}, 1, harness.SchedSync)
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				b.Fatalf("suppression pair outside the degree bracket: %v", row)
			}
		}
	}
}

// BenchmarkLiteralProtocolConvergence measures one full stabilization
// run of the literal variant (the paperproto counterpart of
// BenchmarkProtocolConvergence).
func BenchmarkLiteralProtocolConvergence(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("gnp-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				g := graph.MustFamily("gnp").Build(n, rng)
				res := harness.MustRun(harness.RunSpec{
					Graph: g, Variant: harness.VariantLiteral,
					Scheduler: harness.SchedSync,
					Start:     harness.StartCorrupt, Seed: int64(i),
				})
				if res.Tree == nil {
					b.Fatal("no tree")
				}
			}
		})
	}
}

// BenchmarkProtocolConvergence measures one full stabilization run per
// size (the protocol-level figure of merit behind E2).
func BenchmarkProtocolConvergence(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("gnp-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				g := graph.MustFamily("gnp").Build(n, rng)
				res := harness.MustRun(harness.RunSpec{
					Graph: g, Scheduler: harness.SchedSync,
					Start: harness.StartCorrupt, Seed: int64(i),
				})
				if res.Tree == nil {
					b.Fatal("no tree")
				}
			}
		})
	}
}

// BenchmarkScenarioMatrix measures the scenario engine end to end: a
// 16-run matrix (2 sizes × 2 schedulers × 2 fault models × 2 seeds)
// executed across all CPUs per iteration.
func BenchmarkScenarioMatrix(b *testing.B) {
	spec := scenario.Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{16, 24},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync, harness.SchedAsync},
		Faults:       []scenario.FaultModel{scenario.NoFault{}, scenario.Lossy{Rate: 0.05}},
		SeedsPerCell: 2,
		BaseSeed:     1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := scenario.Default().Execute(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range m.Cells {
			if !c.WithinBound {
				b.Fatalf("cell %s above degree bound", c.Cell)
			}
		}
	}
}

// BenchmarkScenarioMatrixSerial is the single-worker baseline of
// BenchmarkScenarioMatrix; the ratio of the two is the engine's
// parallel speedup on this machine.
func BenchmarkScenarioMatrixSerial(b *testing.B) {
	spec := scenario.Spec{
		Families:     []string{"gnp"},
		Sizes:        []int{16, 24},
		Schedulers:   []harness.SchedulerKind{harness.SchedSync, harness.SchedAsync},
		Faults:       []scenario.FaultModel{scenario.NoFault{}, scenario.Lossy{Rate: 0.05}},
		SeedsPerCell: 2,
		BaseSeed:     1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := (scenario.Engine{Workers: 1}).Execute(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSweep runs a reduced version of the committed scale
// sweep (cmd/mdstmatrix -scale / make bench -> BENCH_scale.json): the
// incremental-hot-path ladder plus the full-rehash baseline
// cross-check. The reported custom metric is the deterministic
// fingerprint-work reduction at the baseline size.
func BenchmarkScaleSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := scenario.ScaleSweep(scenario.ScaleSpec{
			Family: "ring+chords", // protocol-active workload, reduced sizes
			Sizes:  []int{48, 64},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Cells {
			if !c.Converged || !c.WithinBound {
				b.Fatalf("scale cell n=%d: converged=%v withinBound=%v", c.N, c.Converged, c.WithinBound)
			}
		}
		if rep.OverheadReduction <= 1 {
			b.Fatalf("incremental fingerprinting did not reduce work: %.2fx", rep.OverheadReduction)
		}
		b.ReportMetric(rep.OverheadReduction, "fp-reduction-x")
	}
}

// BenchmarkFingerprintQuiescence isolates the per-round
// fingerprint+quiescence overhead the incremental cache removes: one
// full stabilization run per mode on the same seeded workload. Compare
// the two sub-benchmarks' ns/op; the deterministic recompute counts are
// reported as custom metrics.
func BenchmarkFingerprintQuiescence(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full-rehash", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sim.SetFullFingerprintRehash(mode.full)
			defer sim.SetFullFingerprintRehash(false)
			var recomputes int64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(7))
				g := graph.MustFamily("ring+chords").Build(96, rng)
				res := harness.MustRun(harness.RunSpec{
					Graph: g, Scheduler: harness.SchedSync,
					Start: harness.StartCorrupt, Seed: 7,
				})
				if res.Tree == nil {
					b.Fatal("no tree")
				}
				recomputes = res.Metrics.FingerprintRecomputes
			}
			b.ReportMetric(float64(recomputes), "fp-recomputes")
		})
	}
}

// BenchmarkSimThroughput measures raw simulator event throughput with a
// trivial gossip protocol (substrate cost floor).
func BenchmarkSimThroughput(b *testing.B) {
	g := graph.Grid(8, 8)
	cfg := core.DefaultConfig(g.N())
	cfg.DisableReduction = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := core.BuildNetwork(g, cfg, int64(i))
		net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(), MaxRounds: 50})
	}
}

// BenchmarkFurerRaghavachari measures the centralized baseline.
func BenchmarkFurerRaghavachari(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := graph.RandomGnp(n, 8.0/float64(n), rng)
			for i := 0; i < b.N; i++ {
				tr := spanning.WorstDegreeTree(g, 0)
				mdstseq.FurerRaghavachari(tr)
			}
		})
	}
}

// BenchmarkExactDelta measures the exact solver on small instances.
func BenchmarkExactDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomGnp(12, 0.4, rng)
	for i := 0; i < b.N; i++ {
		if _, ok := mdstseq.ExactDelta(g, 0); !ok {
			b.Fatal("budget")
		}
	}
}

// BenchmarkCycleSearch measures the DFS token cost for one fundamental
// cycle on a preloaded path-heavy tree (the dominant message cost).
func BenchmarkCycleSearch(b *testing.B) {
	g := graph.Ring(64)
	cfg := core.DefaultConfig(g.N())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := core.BuildNetwork(g, cfg, int64(i))
		// Form the tree quickly (ring: dmax 2, no reductions fire).
		net.Run(sim.RunConfig{Scheduler: sim.NewSyncScheduler(), MaxRounds: 80})
	}
}

// BenchmarkFundamentalCycle measures the spanning substrate's cycle
// extraction.
func BenchmarkFundamentalCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomGnp(128, 0.1, rng)
	tr := spanning.BFSTree(g, 0)
	nte := tr.NonTreeEdges()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := nte[i%len(nte)]
		if len(tr.FundamentalCycle(e)) < 2 {
			b.Fatal("bad cycle")
		}
	}
}

// BenchmarkWilsonTree measures uniform spanning tree sampling.
func BenchmarkWilsonTree(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomGnp(128, 0.1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spanning.RandomTree(g, 0, rng)
	}
}
