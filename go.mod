module mdst

go 1.21
