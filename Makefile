# CI entry points. `make ci` is the gate: vet + build + full test suite
# + a short -race job over the concurrency-bearing packages (the live
# CSP runtime, the harness, and the scenario engine, whose differential
# test exercises goroutine-per-node execution).

GO ?= go

RACE_PKGS = ./internal/sim/... ./internal/harness/... ./internal/scenario/...

.PHONY: ci vet build test race bench matrix clean

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Reduced-sweep benchmark pass (one iteration per benchmark).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The default 108-run scenario matrix across all CPUs.
matrix:
	$(GO) run ./cmd/mdstmatrix

clean:
	$(GO) clean ./...
