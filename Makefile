# CI entry points. `make ci` is the gate: lint + vet + build + full test
# suite + a short -race job over the concurrency-bearing packages (the
# live CSP runtime, the harness, and the scenario engine, whose
# differential test exercises goroutine-per-node execution) + the
# backend smoke job. `.github/workflows/ci.yml` runs the gate on every
# push/PR, plus the baseline-drift, vuln and gobench jobs.

GO ?= go

# staticcheck is pinned so CI results do not shift under our feet when
# upstream adds checks; bump deliberately. Like govulncheck, the tool
# may be absent offline — `lint` soft-fails on absence (CI installs it).
STATICCHECK_VERSION ?= 2024.1.1

RACE_PKGS = ./internal/sim/... ./internal/harness/... ./internal/scenario/... ./internal/netrun/... ./internal/detect/... ./internal/metrics/... ./internal/auditlog/...

.PHONY: ci lint vet build test race smoke bench gobench matrix drift vuln clean

# (lint already ends with `go vet ./...`, so `vet` is not repeated here.)
ci: lint build test race smoke

# gofmt -l prints unformatted files; any output fails the target.
# staticcheck mirrors the vuln soft-fail pattern: absent tool = warning,
# present tool = hard gate (CI installs the pinned version).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "make lint: gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "make lint: staticcheck not installed — soft-fail (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short skips the full 108-run differential matrix under the race
# detector (the plain `test` target runs it undetected; race coverage
# of the engine comes from its smaller concurrency tests).
race:
	$(GO) test -race -short $(RACE_PKGS)

# Backend smoke: the live (goroutine/channel) and tcp (loopback socket)
# execution backends each drive a tiny run end to end through the shared
# harness orchestration, so backend plumbing cannot silently rot. The
# event jobs pair the discrete-event core against the compat loop
# (differential outcome + frontier parking + StartPath closure), so the
# dual-core contract is checked on every CI run, not only in the full
# test pass.
# -short tightens the wall-clock deadlines (see smokeTuning). The detect
# job covers the convergence-detection subsystem both drivers now rest
# on (sequential reference detector + certificate logic); the
# suppression job exercises the search-suppression knob on live AND tcp,
# not just the deterministic simulator; the tcp-batch job drives a
# batch>1 cluster through the certificate path (coalesced wire frames
# must not change the outcome — see TestBatchedTCPDifferentialOutcome).
# The metrics job smokes the observability plane on the wall-clock
# backends: the control-channel metrics pair plus client-shedding on
# tcp, then live+tcp runs asserting a non-empty snapshot stream and
# cross-backend-identical audit chain heads (those two harness tests
# skip under -short, so the job runs them without it — they finish in
# well under a second).
smoke:
	$(GO) test -short ./internal/detect/
	$(GO) test -short -run 'TestBackend|TestParseBackend|TestTuning' ./internal/harness/
	$(GO) test -short -run 'TestSuppressionSmokeLiveTCP|TestSuppressionSimDeterministicCounter|TestBackoffSmokeLiveTCP' ./internal/harness/
	$(GO) test -short -run 'TestControlChannel|TestSentAccumulates' ./internal/netrun/
	$(GO) test -short -run 'TestBatchedTCPDifferentialOutcome|TestBackendTCPZeroRestartsOnConvergence' ./internal/harness/
	$(GO) test -short -run 'TestBatch|TestTCPBatchedWheelConverges' ./internal/netrun/
	$(GO) test -short ./cmd/mdstnet/
	$(GO) test -short -run 'TestRunEvents' ./internal/sim/
	$(GO) test -short -run 'TestEventEngine|TestParseEngine|TestStartPathClosure' ./internal/harness/
	$(GO) test -short -run 'TestMetricsOverControlChannel|TestControlClientDisconnectMidRequest' ./internal/netrun/
	$(GO) test -run 'TestMetricsWallBackends|TestAuditChainGenesisCrossBackend' ./internal/harness/

# The committed benchmarks. BENCH_scale.json (the n=256/512/1024 ladder
# on the incremental simulator hot path, the event-core closure cells at
# n=4096/16384, plus the full-rehash baseline comparison) holds
# deterministic fields only — byte-stable across machines, so it is also
# a drift gate. BENCH_tcp.json (the tcp
# frame-coalescing sweep: frames-per-message and wall-per-round per
# batch size) is wall-clock and is committed as a snapshot, NOT drifted.
bench:
	$(GO) run ./cmd/mdstmatrix -scale > BENCH_scale.json.tmp
	mv BENCH_scale.json.tmp BENCH_scale.json
	@tail -6 BENCH_scale.json
	$(GO) run ./cmd/mdstmatrix -tcpbench > BENCH_tcp.json.tmp
	mv BENCH_tcp.json.tmp BENCH_tcp.json
	@tail -14 BENCH_tcp.json

# Reduced-sweep Go benchmark pass (one iteration per benchmark).
gobench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The default 108-run scenario matrix across all CPUs.
matrix:
	$(GO) run ./cmd/mdstmatrix

# Baseline drift: regenerate the two committed deterministic artifacts —
# the 108-run default matrix JSON and BENCH_scale.json — and fail on any
# byte difference, enforcing the determinism contract on every CI run
# (the wall-clock cross-backend table is NOT diffed here: its invariant
# claims are regression-tested in internal/scenario instead, because
# wall-clock output is not byte-reproducible).
# The matrix is pinned to -engines compat explicitly: the committed
# matrix bytes are a compat-core artifact, and the pin keeps them stable
# even if the default engine axis ever changes. BENCH_scale.json is
# dual-core by construction (compat ladder + event-core closure cells).
drift:
	$(GO) run ./cmd/mdstmatrix -engines compat -format json -quiet | diff - internal/scenario/testdata/default_matrix_pr2.json
	$(GO) run ./cmd/mdstmatrix -scale -quiet | diff - BENCH_scale.json
	@echo "make drift: committed baselines byte-identical"

# Vulnerability scan. Soft-fail: the tool may be absent and the vuln DB
# needs network access — neither should break an offline CI run.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "make vuln: govulncheck failed (no network?) — soft-fail"; \
	else \
		echo "make vuln: govulncheck not installed — soft-fail (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

clean:
	$(GO) clean ./...
