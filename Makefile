# CI entry points. `make ci` is the gate: vet + build + full test suite
# + a short -race job over the concurrency-bearing packages (the live
# CSP runtime, the harness, and the scenario engine, whose differential
# test exercises goroutine-per-node execution) + the backend smoke job.

GO ?= go

RACE_PKGS = ./internal/sim/... ./internal/harness/... ./internal/scenario/...

.PHONY: ci vet build test race smoke bench gobench matrix clean

ci: vet build test race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short skips the full 108-run differential matrix under the race
# detector (the plain `test` target runs it undetected; race coverage
# of the engine comes from its smaller concurrency tests).
race:
	$(GO) test -race -short $(RACE_PKGS)

# Backend smoke: the live (goroutine/channel) and tcp (loopback socket)
# execution backends each drive a tiny run end to end through the shared
# harness orchestration, so backend plumbing cannot silently rot.
# -short tightens the wall-clock deadlines (see smokeTuning).
smoke:
	$(GO) test -short -run 'TestBackend|TestParseBackend' ./internal/harness/
	$(GO) test -short ./cmd/mdstnet/

# The committed scale benchmark: the n=256/512/1024 ladder on the
# incremental simulator hot path plus the full-rehash baseline
# comparison. Deterministic fields only — the output is byte-stable
# across machines and reruns, so the file is committed.
bench:
	$(GO) run ./cmd/mdstmatrix -scale > BENCH_scale.json.tmp
	mv BENCH_scale.json.tmp BENCH_scale.json
	@tail -6 BENCH_scale.json

# Reduced-sweep Go benchmark pass (one iteration per benchmark).
gobench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The default 108-run scenario matrix across all CPUs.
matrix:
	$(GO) run ./cmd/mdstmatrix

clean:
	$(GO) clean ./...
