# CI entry points. `make ci` is the gate: vet + build + full test suite
# + a short -race job over the concurrency-bearing packages (the live
# CSP runtime, the harness, and the scenario engine, whose differential
# test exercises goroutine-per-node execution) + the backend smoke job.

GO ?= go

RACE_PKGS = ./internal/sim/... ./internal/harness/... ./internal/scenario/... ./internal/netrun/... ./internal/detect/...

.PHONY: ci vet build test race smoke bench gobench matrix vuln clean

ci: vet build test race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short skips the full 108-run differential matrix under the race
# detector (the plain `test` target runs it undetected; race coverage
# of the engine comes from its smaller concurrency tests).
race:
	$(GO) test -race -short $(RACE_PKGS)

# Backend smoke: the live (goroutine/channel) and tcp (loopback socket)
# execution backends each drive a tiny run end to end through the shared
# harness orchestration, so backend plumbing cannot silently rot.
# -short tightens the wall-clock deadlines (see smokeTuning). The detect
# job covers the convergence-detection subsystem both drivers now rest
# on (sequential reference detector + certificate logic).
smoke:
	$(GO) test -short ./internal/detect/
	$(GO) test -short -run 'TestBackend|TestParseBackend|TestTuning' ./internal/harness/
	$(GO) test -short -run 'TestControlChannel|TestSentAccumulates' ./internal/netrun/
	$(GO) test -short ./cmd/mdstnet/

# The committed scale benchmark: the n=256/512/1024 ladder on the
# incremental simulator hot path plus the full-rehash baseline
# comparison. Deterministic fields only — the output is byte-stable
# across machines and reruns, so the file is committed.
bench:
	$(GO) run ./cmd/mdstmatrix -scale > BENCH_scale.json.tmp
	mv BENCH_scale.json.tmp BENCH_scale.json
	@tail -6 BENCH_scale.json

# Reduced-sweep Go benchmark pass (one iteration per benchmark).
gobench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The default 108-run scenario matrix across all CPUs.
matrix:
	$(GO) run ./cmd/mdstmatrix

# Vulnerability scan. Soft-fail: the tool may be absent and the vuln DB
# needs network access — neither should break an offline CI run.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "make vuln: govulncheck failed (no network?) — soft-fail"; \
	else \
		echo "make vuln: govulncheck not installed — soft-fail (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

clean:
	$(GO) clean ./...
