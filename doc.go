// Package mdst is a from-scratch Go reproduction of "Self-stabilizing
// minimum-degree spanning tree within one from the optimal degree"
// (Blin, Gradinariu Potop-Butucaru, Rovedakis; IPDPS 2009).
//
// The public surface lives in the commands (cmd/mdstsim, cmd/mdstbench,
// cmd/mdstnet, cmd/mdstviz, cmd/graphgen) and the examples; the library
// packages are under internal/ (graph, spanning, mdstseq, sim, pif,
// core, paperproto, netrun, harness, benchtab, trace, analysis, viz,
// mc). The protocol is implemented twice — internal/core with the
// tree-preserving chain exchange and internal/paperproto with the
// paper's literal Remove/Back choreography — and runs under three
// runtimes: the deterministic simulator, a goroutine/channel runtime
// and real TCP sockets. See README.md for a tour, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduced evaluation.
package mdst
