// Package mdst is a from-scratch Go reproduction of "Self-stabilizing
// minimum-degree spanning tree within one from the optimal degree"
// (Blin, Gradinariu Potop-Butucaru, Rovedakis; IPDPS 2009).
//
// The public surface lives in the commands (cmd/mdstsim, cmd/mdstbench,
// cmd/mdstmatrix, cmd/mdstnet, cmd/mdstviz, cmd/graphgen) and the
// examples; the library packages are under internal/ (graph, spanning,
// mdstseq, sim, pif, core, paperproto, localview, detect, netrun,
// harness, scenario, benchtab, trace, analysis, viz, mc, metrics,
// auditlog). The protocol
// is implemented twice — internal/core with the tree-preserving chain
// exchange and internal/paperproto with the paper's literal Remove/Back
// choreography, both storing neighbor views in the shared dense
// localview tables — and runs under three pluggable execution backends
// behind one harness orchestration (harness.RunSpec.Backend): "sim",
// the deterministic seeded simulator (sim.Network — the default and the
// only bit-reproducible backend); "live", the goroutine-per-node CSP
// runtime (sim.LiveNetwork); and "tcp", a loopback-socket cluster
// (internal/netrun), one TCP connection per edge. The scenario engine
// exposes the backend as a matrix axis (Spec.Backends, `mdstmatrix
// -backend sim,live,tcp`), runs draw identical workloads and
// corruptions across backends, and cmd/mdstnet is a thin front-end over
// the tcp driver. The live and tcp backends execute on the wall clock:
// their round/message counts vary across repeats, while the legitimacy
// and Δ*+1 degree claims must not.
//
// Convergence detection is in-band (internal/detect): the composed
// protocol is silent, so quiescence is its own observable property. A
// deterministic Dijkstra–Scholten-style detector — per-node state
// versions as quiescence epochs, the combined state fingerprint, and a
// zero message deficit over the protocol's reduction kinds, all frozen
// for a stability window — issues quiescence certificates that both
// wall-clock drivers use to decide when a stop is worth taking: the
// live driver feeds it concurrent in-process probes, the tcp driver
// polls a side-channel control connection (netrun.ProbeConn) so the
// cluster is never stopped just to look, and converging tcp runs take
// zero restarts. harness.BackendTuning.Budget additionally scales each
// wall-clock run's deadline from its paired deterministic sim run
// (`mdstmatrix -budget`), replacing one-size-fits-all deadlines.
//
// The simulator's hot path is incremental end to end, which is what
// lets scenario matrices scale past n=256 (up to the committed n=1024
// cell of BENCH_scale.json): per-node fingerprints are cached and
// re-hashed only when a node's state version moves (sim.StateVersioner,
// bumped by the protocol's guarded writes), the asynchronous-round
// accounting is an epoch-stamped array instead of a per-round map, and
// pending-message counts are maintained per kind. A full-rehash
// reference mode (sim.SetFullFingerprintRehash) reproduces the original
// hash-everything behavior; differential tests assert byte-identical
// matrix JSON between the two modes, and `make bench` commits the
// measured fingerprint-work reduction. Round accounting under lossy
// links follows §2 strictly: a dropped delivery settles the old-message
// obligation but never counts as a step at the recipient.
//
// The protocol's own traffic has a suppression hot path
// (core.Config.SuppressSearches, harness.RunSpec.Suppress, `mdstmatrix
// -suppress off,on`, `mdstnet -suppress`): per-initiator duplicate
// Search-token pruning — a node that already launched or forwarded an
// equivalent token (same fundamental-cycle key {initiator edge, deblock
// target}) within a suppression window drops re-arrivals unless its own
// state changed since — plus batched launch pacing. Suppression is a
// bounded delay, never a permanent block, so the outcome (the
// legitimacy predicate and the Δ*+1 bracket) is equivalent,
// differential-tested on the property-sweep families; quiescence
// windows derive from Config.EffectiveRetryPeriod so a suppressed
// configuration is never certified quiescent before its deferred
// search re-fires. With the knob off the schedule is paper-literal and
// every committed baseline is byte-identical. BENCH_scale.json commits
// the paired on/off comparison (~3.4× fewer Search-kind messages at
// n=512), and the committed cross-backend table
// (internal/scenario/testdata/crossbackend_medium.json, `mdstmatrix
// -xbackend`) runs the medium-n ladder across sim, live and tcp with
// suppression on.
//
// On top of static suppression the window is adaptive
// (core.Config.BackoffSearches/BackoffCap, harness.RunSpec.Backoff,
// `mdstmatrix -backoff off,on`, `mdstnet -backoff`): while a node's
// state version — its local image of the neighborhood version vector —
// is a fixed point, each full pruning window that lapses without an
// equivalent launch doubles the effective window, from the 4×SearchPeriod
// base up to a 16× cap, and any version movement collapses it back to
// the base before the next launch decision, so steady-state retry
// traffic decays geometrically toward zero while fault recovery runs on
// the base schedule. The backoff tier is transient bookkeeping — never
// fingerprinted, never version-bumping — so it observes quiescence
// without perturbing it. Stability windows track the schedule: the sim
// cores derive theirs from the live maximum Node.CurrentRetryPeriod
// (sim.Network.MaxRetryPeriod, re-evaluated only past the static floor),
// the wall-clock drivers take the conservative cap via
// Config.EffectiveRetryPeriod, and the event core parks a backed-off
// node straight through to its recorded pass expiry so a silent network
// costs no wake-ups at all. BENCH_scale.json commits a drift-gated
// steady-state decay section (star-of-cliques n=253, paired seeds):
// post-convergence traffic in the final cap-length window drops 13.7×
// versus the static-window twin, and a node corrupted at the deepest
// tier (retry spacing = the 1024-round cap) re-converges with a
// certificate in 2599 rounds against a 5188-round budget deadline.
// Off = byte-identical static-suppression baselines; the scenario
// backoff axis is excluded from run seeds like the other mode axes.
//
// The tcp backend's transport coalesces frames per link
// (netrun.Config.BatchSize/BatchMaxWait, harness.BackendTuning,
// `mdstmatrix -batch/-batchwait`, `mdstnet -batch/-batchwait`): above
// batch size 1 each edge direction's writer packs queued messages into
// multi-message gob frames — flushed on batch-size or max-wait, one
// syscall burst per frame — while batch size 1 keeps the pre-batching
// one-envelope-per-message wire format byte-compatible. One gob
// encoder and one gob decoder own each connection for its lifetime
// (decoders buffer ahead; a second decoder on the same conn loses
// bytes). Coalescing is a transport concern only: the batch=1 vs
// batch=16 differential test pins identical legitimacy and Δ*+1
// outcomes, and `make bench` commits the measured frames-per-message
// and wall-per-round numbers to BENCH_tcp.json (a wall-clock snapshot,
// unlike the byte-stable BENCH_scale.json).
//
// Observability is a control plane over the same runs
// (internal/metrics + internal/auditlog, harness.RunSpec.Collect/Audit,
// scenario Spec.Metrics, `mdstmatrix -metrics`, `mdstnet -metrics`,
// `mdstviz -live`): a metrics.Collector samples flat JSON/CSV
// snapshots — per-node message rates by kind, the degree histogram,
// suppression counters, and certificate progress (version-vector fill,
// message deficit, stability-window position) — from counters the
// backends already maintain, so a run with the plane off is
// byte-identical to one that never had it (the committed matrix and
// BENCH_scale.json baselines are regression-locked on this). The sim
// driver samples from its run loop reusing the incremental fingerprint;
// the live driver samples at each detector observation; the tcp driver
// extends the netrun control-channel gob protocol with a
// metricsRequest/metricsReply pair beside the probe pair (one encoder
// and one decoder per connection, interface-encoded requests
// dispatched by type switch). Independently, every accepted tree
// mutation — parent change, blocking-edge exchange, deblock-triggered
// reset — appends {round, node, kind, old, new} to a per-run hash
// chain (splitmix folding via detect.MixNode, node-ID-major, rounds
// excluded so wall-clock interleavings agree); the chain head rides in
// harness.Result, and two observers of the same seeded run must report
// byte-identical heads — a cross-backend differential test pins a
// legitimate start to the genesis head on all three backends, and the
// scenario engine pins chain heads across worker counts.
//
// The deterministic simulator itself has two execution cores behind
// one harness knob (harness.RunSpec.Engine, scenario Spec.Engines,
// `mdstsim -engine`, `mdstmatrix -engines compat,event`). The compat
// core (sim.Network.Run) is the original per-round full sweep — every
// node ticks every round — and is what every committed byte-identity
// baseline was generated with. The event core (sim.Network.RunEvents)
// is a discrete-event scheduler over the same links and processes:
// pending deliveries and per-node tick timers sit in a calendar queue
// bucketed by virtual round, only nodes with work are touched, idle
// nodes park until a message or a due search retry wakes them
// (sim.EventProcess), and empty stretches of virtual time — including
// the whole 2n+Θ(1) quiescence window once the network is silent — are
// fast-forwarded instead of swept. Rounds remain a derived view of
// virtual time, so round-denominated outputs and certificates keep
// their meaning; the two cores are differential-tested for outcome
// equivalence (legitimacy + Δ*+1) on paired seeds. Frontier-only
// scheduling is what makes n=16384 reachable: BENCH_scale.json commits
// event-core closure cells at n=4096 and n=16384 — the canonical
// Hamiltonian-path configuration on ring+chords (harness.StartPath) is
// a degree-2 global optimum and a protocol fixed point, so the run
// measures pure closure: the network parks after one settling tick and
// tail work per node per round is ~1e-4 versus the compat core's floor
// of 1. Corrupt-start recovery at that scale is protocol-infeasible,
// not simulator-limited — believed degree > 2 re-arms every chord's
// Θ(n)-message search every SearchPeriod rounds, Θ(n²) traffic per
// window — so the recovery ladder stays at the committed compat sizes.
//
// Experiment execution layers on the internal/scenario matrix engine: a
// declarative Spec (graph families × sizes × schedulers × start modes ×
// variants × backends × suppression × fault models × seeds) expands
// into a run matrix executed across GOMAXPROCS workers, each run seeded
// from a hash of its matrix coordinates so results are byte-identical
// at any parallelism. The churn, lossy-link and targeted-corruption
// fault injections are shared scenario.FaultModel values; every
// internal/benchtab experiment table (E1–E12) and the cmd/mdstmatrix
// CLI are thin renderers over the engine.
//
// CI lives in .github/workflows/ci.yml: every push/PR runs the full
// `make ci` gate (lint — gofmt + vet + pinned staticcheck, soft-fail
// when the tool is absent offline — build + tests + -race + smoke), a
// baseline-drift job that regenerates the committed 108-run matrix JSON
// and BENCH_scale.json and fails on any byte difference (uploading the
// regenerated artifacts on failure for inspection), a soft-fail
// govulncheck job re-run weekly on a schedule against fresh advisories,
// and a 1x-benchtime pass over every Go benchmark. One workflow runs
// per ref (superseded pushes are cancelled) and every job carries a
// timeout.
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package mdst
