// Package mdst is a from-scratch Go reproduction of "Self-stabilizing
// minimum-degree spanning tree within one from the optimal degree"
// (Blin, Gradinariu Potop-Butucaru, Rovedakis; IPDPS 2009).
//
// The public surface lives in the commands (cmd/mdstsim, cmd/mdstbench,
// cmd/mdstmatrix, cmd/mdstnet, cmd/mdstviz, cmd/graphgen) and the
// examples; the library packages are under internal/ (graph, spanning,
// mdstseq, sim, pif, core, paperproto, netrun, harness, scenario,
// benchtab, trace, analysis, viz, mc). The protocol is implemented
// twice — internal/core with the tree-preserving chain exchange and
// internal/paperproto with the paper's literal Remove/Back choreography
// — and runs under three runtimes: the deterministic simulator, a
// goroutine/channel runtime and real TCP sockets.
//
// Experiment execution layers on the internal/scenario matrix engine: a
// declarative Spec (graph families × sizes × schedulers × start modes ×
// variants × fault models × seeds) expands into a run matrix executed
// across GOMAXPROCS workers, each run seeded from a hash of its matrix
// coordinates so results are byte-identical at any parallelism. The
// churn, lossy-link and targeted-corruption fault injections are shared
// scenario.FaultModel values; internal/benchtab's experiment tables and
// the cmd/mdstmatrix CLI are thin renderers over the engine. See
// README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package mdst
